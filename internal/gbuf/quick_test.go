package gbuf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

// refBuffer is an obviously-correct model of the GlobalBuffer semantics:
// per-byte written map (write set), per-word read snapshots (read set), and
// a shadow of the arena for commit checking. Every registered backend must
// agree with it.
type refBuffer struct {
	arena   *mem.Arena
	written map[mem.Addr]byte   // byte address -> speculative value
	readSet map[mem.Addr]uint64 // word base -> snapshot
}

func newRefBuffer(a *mem.Arena) *refBuffer {
	return &refBuffer{arena: a, written: map[mem.Addr]byte{}, readSet: map[mem.Addr]uint64{}}
}

func (r *refBuffer) load(p mem.Addr, size int) uint64 {
	base := mem.WordBase(p)
	// Does the write set fully cover the access?
	covered := true
	for i := 0; i < size; i++ {
		if _, ok := r.written[p+mem.Addr(i)]; !ok {
			covered = false
			break
		}
	}
	if !covered {
		if _, ok := r.readSet[base]; !ok {
			r.readSet[base] = r.arena.ReadWord(base)
		}
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		b, ok := r.written[p+mem.Addr(i)]
		if !ok {
			snap := r.readSet[base]
			b = byte(snap >> (8 * uint(mem.WordOffset(p+mem.Addr(i)))))
		}
		v = v<<8 | uint64(b)
	}
	return v
}

func (r *refBuffer) store(p mem.Addr, size int, v uint64) {
	for i := 0; i < size; i++ {
		r.written[p+mem.Addr(i)] = byte(v >> (8 * i))
	}
}

func (r *refBuffer) validate() bool {
	for base, snap := range r.readSet {
		if r.arena.ReadWord(base) != snap {
			return false
		}
	}
	return true
}

func (r *refBuffer) commit() {
	for p, b := range r.written {
		r.arena.WriteUint8(p, b)
	}
}

var accessSizes = []int{1, 2, 4, 8}

// oracleConfigs maps every registered backend to a config under which the
// test address range (word slots 1..200 of a 4 KiB arena) produces only OK
// statuses: a collision-free openaddr map, chained buckets (collisions
// resolve silently) and small bitmap pages. The overflow/conflict paths of
// openaddr are exercised separately by TestQuickOracleUnderConflicts.
func oracleConfigs() map[string]Config {
	return map[string]Config{
		"openaddr": {Backend: "openaddr", LogWords: 10, OverflowCap: 4},
		"chain":    {Backend: "chain", LogBuckets: 4},
		"bitmap":   {Backend: "bitmap", PageWords: 64},
	}
}

// TestOracleCoversEveryBackend forces whoever registers a new backend to
// add it to the cross-backend oracle configs.
func TestOracleCoversEveryBackend(t *testing.T) {
	cfgs := oracleConfigs()
	for _, name := range Backends() {
		if _, ok := cfgs[name]; !ok {
			t.Errorf("backend %q registered but missing from oracleConfigs", name)
		}
	}
	if len(cfgs) != len(Backends()) {
		t.Errorf("oracleConfigs has %d entries, %d backends registered", len(cfgs), len(Backends()))
	}
}

// forEachBackend runs a subtest per registered backend with its oracle
// config.
func forEachBackend(t *testing.T, fn func(t *testing.T, cfg Config)) {
	for _, name := range Backends() {
		cfg := oracleConfigs()[name]
		t.Run(name, func(t *testing.T) { fn(t, cfg) })
	}
}

// TestQuickBufferMatchesReference drives random aligned load/store sequences
// through every backend and the reference model, comparing every load
// value, the validation verdict under random non-speculative interference,
// and the committed arena image.
func TestQuickBufferMatchesReference(t *testing.T) {
	forEachBackend(t, func(t *testing.T, cfg Config) {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			arenaA, _ := mem.NewArena(1 << 12)
			arenaB, _ := mem.NewArena(1 << 12)
			// Identical random initial contents.
			for i := 8; i < 1<<12; i++ {
				v := byte(rng.Intn(256))
				arenaA.WriteUint8(mem.Addr(i), v)
				arenaB.WriteUint8(mem.Addr(i), v)
			}
			buf, err := NewBackend(arenaA, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref := newRefBuffer(arenaB)
			for op := 0; op < 300; op++ {
				size := accessSizes[rng.Intn(len(accessSizes))]
				slot := rng.Intn(200)
				p := mem.Addr(8 + slot*8 + rng.Intn(mem.Word/size)*size)
				if rng.Intn(2) == 0 {
					v := rng.Uint64()
					st := buf.Store(p, size, v)
					if st != OK {
						t.Logf("store status %v at op %d", st, op)
						return false
					}
					ref.store(p, size, v)
				} else {
					got, st := buf.Load(p, size)
					if st != OK {
						t.Logf("load status %v at op %d", st, op)
						return false
					}
					want := ref.load(p, size)
					if got != want {
						t.Logf("load mismatch at %d size %d: got %#x want %#x (op %d)", p, size, got, want, op)
						return false
					}
				}
			}
			if rs, ws := buf.ReadSetSize(), buf.WriteSetSize(); rs != len(ref.readSet) || ws*mem.Word < len(ref.written) {
				t.Logf("set sizes: real %d/%d words, ref %d reads / %d written bytes", rs, ws, len(ref.readSet), len(ref.written))
				return false
			}
			// Random non-speculative interference on both arenas.
			for i := 0; i < 20; i++ {
				p := mem.Addr(8 + rng.Intn(200)*8)
				v := rng.Uint64()
				arenaA.WriteWord(p, v)
				arenaB.WriteWord(p, v)
			}
			okA, okB := buf.Validate(), ref.validate()
			if okA != okB {
				t.Logf("validation disagreement: real=%v ref=%v", okA, okB)
				return false
			}
			// Commit both and compare the full arena images.
			buf.Commit(nil)
			ref.commit()
			for i := 8; i < 1<<12; i++ {
				if arenaA.ReadUint8(mem.Addr(i)) != arenaB.ReadUint8(mem.Addr(i)) {
					t.Logf("arena divergence at byte %d", i)
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestQuickOracleUnderConflicts drives the openaddr backend with a tiny map
// so hash conflicts and overflow exhaustion actually happen, and checks that
// parked accesses (Conflict) still return reference values, that Full leaves
// the access unapplied, and that validation and the committed image agree
// with the reference regardless.
func TestQuickOracleUnderConflicts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		arenaA, _ := mem.NewArena(1 << 12)
		arenaB, _ := mem.NewArena(1 << 12)
		for i := 8; i < 1<<12; i++ {
			v := byte(rng.Intn(256))
			arenaA.WriteUint8(mem.Addr(i), v)
			arenaB.WriteUint8(mem.Addr(i), v)
		}
		// 4-word map over 50 slots: collisions are the common case.
		buf, err := NewBackend(arenaA, Config{Backend: "openaddr", LogWords: 2, OverflowCap: 8})
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefBuffer(arenaB)
		sawConflict, sawFull := false, false
		for op := 0; op < 200; op++ {
			size := accessSizes[rng.Intn(len(accessSizes))]
			slot := rng.Intn(50)
			p := mem.Addr(8 + slot*8 + rng.Intn(mem.Word/size)*size)
			if rng.Intn(2) == 0 {
				v := rng.Uint64()
				switch st := buf.Store(p, size, v); st {
				case OK, Conflict:
					if st == Conflict {
						sawConflict = true
						if !buf.MustStop() {
							t.Log("Conflict without MustStop")
							return false
						}
					}
					ref.store(p, size, v)
				case Full:
					sawFull = true // access not absorbed; the thread would roll back
				default:
					t.Logf("store status %v", st)
					return false
				}
			} else {
				got, st := buf.Load(p, size)
				switch st {
				case OK, Conflict:
					if st == Conflict {
						sawConflict = true
					}
					if want := ref.load(p, size); got != want {
						t.Logf("load mismatch at %d size %d: got %#x want %#x (st %v)", p, size, got, want, st)
						return false
					}
				case Full:
					sawFull = true
				default:
					t.Logf("load status %v", st)
					return false
				}
			}
			if sawFull {
				break // a real thread rolls back here; stop driving ops
			}
		}
		if c := buf.Counters(); sawConflict && c.Conflicts == 0 {
			t.Log("conflicts seen but not counted")
			return false
		}
		if sawFull {
			return true // rolled back: nothing further to compare
		}
		for i := 0; i < 10; i++ {
			p := mem.Addr(8 + rng.Intn(50)*8)
			v := rng.Uint64()
			arenaA.WriteWord(p, v)
			arenaB.WriteWord(p, v)
		}
		if okA, okB := buf.Validate(), ref.validate(); okA != okB {
			t.Logf("validation disagreement: real=%v ref=%v", okA, okB)
			return false
		}
		buf.Commit(nil)
		ref.commit()
		for i := 8; i < 1<<12; i++ {
			if arenaA.ReadUint8(mem.Addr(i)) != arenaB.ReadUint8(mem.Addr(i)) {
				t.Logf("arena divergence at byte %d", i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickValidationExactness: validation fails iff some read word differs
// from the arena — for every backend.
func TestQuickValidationExactness(t *testing.T) {
	forEachBackend(t, func(t *testing.T, cfg Config) {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			arena, _ := mem.NewArena(1 << 12)
			buf, err := NewBackend(arena, cfg)
			if err != nil {
				t.Fatal(err)
			}
			read := map[mem.Addr]uint64{}
			for i := 0; i < 50; i++ {
				p := mem.Addr(8 + rng.Intn(100)*8)
				v, _ := buf.Load(p, 8)
				if _, ok := read[p]; !ok {
					read[p] = v
				}
			}
			dirty := false
			for i := 0; i < 10; i++ {
				p := mem.Addr(8 + rng.Intn(150)*8)
				nv := rng.Uint64()
				old, wasRead := read[p]
				arena.WriteWord(p, nv)
				if wasRead && nv != old {
					dirty = true
				}
			}
			return buf.Validate() == !dirty
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestQuickCommitTouchesOnlyWrittenBytes: after arbitrary (sub-word) stores,
// commit changes exactly the stored byte addresses — the byte-mark contract
// every backend must honor.
func TestQuickCommitTouchesOnlyWrittenBytes(t *testing.T) {
	forEachBackend(t, func(t *testing.T, cfg Config) {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			arena, _ := mem.NewArena(1 << 12)
			for i := 8; i < 1<<12; i++ {
				arena.WriteUint8(mem.Addr(i), byte(rng.Intn(256)))
			}
			before := make([]byte, 1<<12)
			copy(before, arena.Snapshot(1, (1<<12)-1)) // offset by 1; index i-1 = addr i
			buf, err := NewBackend(arena, cfg)
			if err != nil {
				t.Fatal(err)
			}
			written := map[mem.Addr]byte{}
			for op := 0; op < 100; op++ {
				size := accessSizes[rng.Intn(len(accessSizes))]
				p := mem.Addr(8 + rng.Intn(100)*8 + rng.Intn(mem.Word/size)*size)
				v := rng.Uint64()
				buf.Store(p, size, v)
				for i := 0; i < size; i++ {
					written[p+mem.Addr(i)] = byte(v >> (8 * i))
				}
			}
			buf.Commit(nil)
			for i := mem.Addr(8); i < 1<<12; i++ {
				want, ok := written[i]
				if !ok {
					want = before[i-1]
				}
				if arena.ReadUint8(i) != want {
					t.Logf("byte %d: got %#x want %#x (written=%v)", i, arena.ReadUint8(i), want, ok)
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestMisalignedRejectedByEveryBackend: misaligned or odd-sized accesses are
// rejected without perturbing the sets.
func TestMisalignedRejectedByEveryBackend(t *testing.T) {
	forEachBackend(t, func(t *testing.T, cfg Config) {
		arena, _ := mem.NewArena(1 << 12)
		buf, err := NewBackend(arena, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, st := buf.Load(65, 8); st != Misaligned {
			t.Errorf("unaligned word load: %v", st)
		}
		if st := buf.Store(66, 4, 1); st != Misaligned {
			t.Errorf("unaligned dword store: %v", st)
		}
		if _, st := buf.Load(64, 3); st != Misaligned {
			t.Errorf("weird size load: %v", st)
		}
		if st := buf.Store(64, 0, 1); st != Misaligned {
			t.Errorf("zero size store: %v", st)
		}
		if buf.ReadSetSize() != 0 || buf.WriteSetSize() != 0 || buf.MustStop() {
			t.Error("misaligned access left buffered state behind")
		}
	})
}

// TestQuickFinalizeIsFresh: after random traffic and Finalize, every backend
// behaves as newly constructed.
func TestQuickFinalizeIsFresh(t *testing.T) {
	forEachBackend(t, func(t *testing.T, cfg Config) {
		rng := rand.New(rand.NewSource(7))
		arena, _ := mem.NewArena(1 << 12)
		buf, err := NewBackend(arena, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 3; round++ {
			for op := 0; op < 120; op++ {
				size := accessSizes[rng.Intn(len(accessSizes))]
				p := mem.Addr(8 + rng.Intn(100)*8 + rng.Intn(mem.Word/size)*size)
				if rng.Intn(2) == 0 {
					buf.Store(p, size, rng.Uint64())
				} else {
					buf.Load(p, size)
				}
			}
			buf.Finalize()
			if buf.ReadSetSize() != 0 || buf.WriteSetSize() != 0 || buf.MustStop() {
				t.Fatalf("round %d: finalize left state behind", round)
			}
			// Discarded writes must not leak: loads re-snapshot the arena.
			arena.WriteWord(64, uint64(round)+100)
			v, st := buf.Load(64, 8)
			if st != OK && st != Conflict {
				t.Fatalf("round %d: post-finalize load status %v", round, st)
			}
			if v != uint64(round)+100 {
				t.Fatalf("round %d: post-finalize load = %d", round, v)
			}
			buf.Finalize()
			buf.Commit(nil) // empty commit is a no-op
			if arena.ReadWord(64) != uint64(round)+100 {
				t.Fatalf("round %d: empty commit changed memory", round)
			}
		}
	})
}
