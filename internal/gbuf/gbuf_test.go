package gbuf

import (
	"testing"

	"repro/internal/mem"
)

func newTestBuffer(t *testing.T, logWords, ovCap int) (*Buffer, *mem.Arena) {
	t.Helper()
	arena, err := mem.NewArena(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(arena, Config{LogWords: logWords, OverflowCap: ovCap})
	if err != nil {
		t.Fatal(err)
	}
	return b, arena
}

func TestNewRejectsBadConfig(t *testing.T) {
	arena, _ := mem.NewArena(1 << 10)
	if _, err := New(arena, Config{LogWords: 0, OverflowCap: 4}); err == nil {
		t.Error("LogWords 0 accepted")
	}
	if _, err := New(arena, Config{LogWords: 40, OverflowCap: 4}); err == nil {
		t.Error("huge LogWords accepted")
	}
	if _, err := New(arena, Config{LogWords: 4, OverflowCap: -2}); err == nil {
		t.Error("negative overflow accepted")
	}
	if _, err := New(arena, Config{LogWords: 4, OverflowCap: NoOverflow}); err != nil {
		t.Errorf("NoOverflow rejected: %v", err)
	}
}

func TestLoadReadsArenaOnFirstTouch(t *testing.T) {
	b, arena := newTestBuffer(t, 8, 8)
	arena.WriteWord(64, 0x1122334455667788)
	v, st := b.Load(64, 8)
	if st != OK || v != 0x1122334455667788 {
		t.Fatalf("Load = %#x, %v", v, st)
	}
	if b.ReadSetSize() != 1 {
		t.Fatalf("ReadSetSize = %d", b.ReadSetSize())
	}
	// Second load hits the snapshot even if memory changed underneath.
	arena.WriteWord(64, 0xAAAA)
	v, st = b.Load(64, 8)
	if st != OK || v != 0x1122334455667788 {
		t.Fatalf("snapshot load = %#x, %v", v, st)
	}
}

func TestStoreDoesNotTouchArenaUntilCommit(t *testing.T) {
	b, arena := newTestBuffer(t, 8, 8)
	arena.WriteWord(64, 7)
	if st := b.Store(64, 8, 99); st != OK {
		t.Fatal(st)
	}
	if arena.ReadWord(64) != 7 {
		t.Fatal("store leaked to arena before commit")
	}
	b.Commit(nil)
	if arena.ReadWord(64) != 99 {
		t.Fatal("commit did not apply store")
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	b, arena := newTestBuffer(t, 8, 8)
	arena.WriteWord(64, 7)
	b.Store(64, 8, 42)
	v, st := b.Load(64, 8)
	if st != OK || v != 42 {
		t.Fatalf("read-own-write = %d, %v", v, st)
	}
	// A pure read-after-write must not create a read-set entry (no
	// validation dependence on a location we only wrote).
	if b.ReadSetSize() != 0 {
		t.Fatalf("ReadSetSize = %d after write-then-read of full word", b.ReadSetSize())
	}
}

func TestSubWordStoreThenLoad(t *testing.T) {
	b, arena := newTestBuffer(t, 8, 8)
	arena.WriteWord(64, 0x8877665544332211)
	if st := b.Store(66, 2, 0xBEEF); st != OK {
		t.Fatal(st)
	}
	// Bytes 2..3 replaced, everything else from the underlying word.
	v, st := b.Load(64, 8)
	if st != OK {
		t.Fatal(st)
	}
	want := uint64(0x88776655BEEF2211)
	if v != want {
		t.Fatalf("merged word = %#x, want %#x", v, want)
	}
	// The partially-unwritten load had to snapshot the word for validation.
	if b.ReadSetSize() != 1 {
		t.Fatalf("ReadSetSize = %d, want 1", b.ReadSetSize())
	}
}

func TestSubWordLoadFullyWrittenAvoidsReadSet(t *testing.T) {
	b, _ := newTestBuffer(t, 8, 8)
	b.Store(64, 4, 0xCAFEBABE)
	v, st := b.Load(64, 4)
	if st != OK || v != 0xCAFEBABE {
		t.Fatalf("load = %#x, %v", v, st)
	}
	if b.ReadSetSize() != 0 {
		t.Fatal("fully-written sub-word load entered the read set")
	}
}

func TestSubWordCommitAppliesOnlyMarkedBytes(t *testing.T) {
	b, arena := newTestBuffer(t, 8, 8)
	arena.WriteWord(64, 0x8877665544332211)
	b.Store(64, 1, 0xAA)
	b.Store(67, 1, 0xBB)
	// The arena word changes under the speculative thread; unmarked bytes
	// must keep the *latest* arena values after commit.
	arena.WriteWord(64, 0x1111111111111111)
	b.Commit(nil)
	if got := arena.ReadWord(64); got != 0x11111111BB1111AA {
		t.Fatalf("commit result %#x", got)
	}
	if b.C.BytesCommitted != 2 {
		t.Fatalf("BytesCommitted = %d, want 2", b.C.BytesCommitted)
	}
	if b.C.WordsCommitted != 0 {
		t.Fatalf("WordsCommitted = %d, want 0", b.C.WordsCommitted)
	}
}

func TestWholeWordCommitFastPath(t *testing.T) {
	b, arena := newTestBuffer(t, 8, 8)
	b.Store(64, 8, 5)
	b.Store(72, 4, 1)
	b.Store(76, 4, 2) // together fully mark word 72
	b.Commit(nil)
	if arena.ReadWord(64) != 5 {
		t.Fatal("word commit failed")
	}
	if arena.ReadUint32(72) != 1 || arena.ReadUint32(76) != 2 {
		t.Fatal("two-half commit failed")
	}
	if b.C.WordsCommitted != 2 {
		t.Fatalf("WordsCommitted = %d, want 2 (fast path for both words)", b.C.WordsCommitted)
	}
}

func TestValidationDetectsConflict(t *testing.T) {
	b, arena := newTestBuffer(t, 8, 8)
	arena.WriteWord(64, 1)
	b.Load(64, 8)
	if !b.Validate() {
		t.Fatal("validation failed with no interference")
	}
	arena.WriteWord(64, 2) // non-speculative write after speculative read
	if b.Validate() {
		t.Fatal("validation passed despite read-write conflict")
	}
	if b.C.ValidationFail == 0 {
		t.Fatal("failure not counted")
	}
}

func TestValidationIgnoresWriteOnlyWords(t *testing.T) {
	b, arena := newTestBuffer(t, 8, 8)
	b.Store(64, 8, 42)
	arena.WriteWord(64, 7) // WAW is not a conflict in this model
	if !b.Validate() {
		t.Fatal("write-only access failed validation")
	}
}

func TestSubWordFalseSharingIsConservative(t *testing.T) {
	// Word-granularity validation: reading byte 0 conflicts with a
	// non-speculative write to byte 7 of the same word. The paper's design
	// validates whole read words; we document the same conservatism.
	b, arena := newTestBuffer(t, 8, 8)
	arena.WriteWord(64, 0)
	b.Load(64, 1)
	arena.WriteUint8(71, 9)
	if b.Validate() {
		t.Fatal("expected conservative word-granularity conflict")
	}
}

func TestMisalignedAccessRejected(t *testing.T) {
	b, _ := newTestBuffer(t, 8, 8)
	if _, st := b.Load(65, 8); st != Misaligned {
		t.Errorf("unaligned word load: %v", st)
	}
	if st := b.Store(66, 4, 1); st != Misaligned {
		t.Errorf("unaligned dword store: %v", st)
	}
	if _, st := b.Load(64, 3); st != Misaligned {
		t.Errorf("weird size load: %v", st)
	}
	if st := b.Store(64, 0, 1); st != Misaligned {
		t.Errorf("zero size store: %v", st)
	}
}

// Two addresses that collide in a 2^4-word map: slots are (addr>>3)&15, so
// addresses 8*k and 8*(k+16) collide.
func collidingAddrs() (mem.Addr, mem.Addr) { return 64, 64 + 16*8 }

func TestHashConflictGoesToOverflow(t *testing.T) {
	b, arena := newTestBuffer(t, 4, 4)
	a1, a2 := collidingAddrs()
	arena.WriteWord(a1, 11)
	arena.WriteWord(a2, 22)
	if _, st := b.Load(a1, 8); st != OK {
		t.Fatal(st)
	}
	v, st := b.Load(a2, 8)
	if st != Conflict {
		t.Fatalf("colliding load status %v", st)
	}
	if v != 22 {
		t.Fatalf("overflow load value %d", v)
	}
	if !b.MustStop() {
		t.Fatal("overflow did not set MustStop")
	}
	// Overflow entries still participate in snapshots and validation.
	v, st = b.Load(a2, 8)
	if st != OK || v != 22 {
		t.Fatalf("re-load of overflow entry = %d, %v", v, st)
	}
	if !b.Validate() {
		t.Fatal("validation failed with overflow entry intact")
	}
	arena.WriteWord(a2, 33)
	if b.Validate() {
		t.Fatal("overflow read conflict missed")
	}
}

func TestWriteOverflowCommits(t *testing.T) {
	b, arena := newTestBuffer(t, 4, 4)
	a1, a2 := collidingAddrs()
	if st := b.Store(a1, 8, 1); st != OK {
		t.Fatal(st)
	}
	if st := b.Store(a2, 8, 2); st != Conflict {
		t.Fatalf("colliding store status %v", st)
	}
	// Updating the parked word must modify the overflow entry in place.
	if st := b.Store(a2, 8, 3); st != OK {
		t.Fatalf("update of overflow entry status %v", st)
	}
	b.Commit(nil)
	if arena.ReadWord(a1) != 1 || arena.ReadWord(a2) != 3 {
		t.Fatalf("commit = %d, %d", arena.ReadWord(a1), arena.ReadWord(a2))
	}
}

func TestOverflowExhaustionReturnsFull(t *testing.T) {
	b, _ := newTestBuffer(t, 1, 1) // 2-word map, 1 overflow slot
	// Fill both map slots and the overflow slot with colliding words.
	if st := b.Store(64, 8, 1); st != OK {
		t.Fatal(st)
	}
	if st := b.Store(64+2*8, 8, 2); st != Conflict {
		t.Fatal(st)
	}
	if st := b.Store(64+4*8, 8, 3); st != Full {
		t.Fatalf("expected Full, got %v", st)
	}
	// Read side exhaustion too.
	b2, _ := newTestBuffer(t, 1, 1)
	b2.Load(64, 8)
	if _, st := b2.Load(64+2*8, 8); st != Conflict {
		t.Fatal(st)
	}
	if _, st := b2.Load(64+4*8, 8); st != Full {
		t.Fatalf("expected read Full, got %v", st)
	}
}

func TestFinalizeResetsEverything(t *testing.T) {
	b, arena := newTestBuffer(t, 4, 4)
	a1, a2 := collidingAddrs()
	arena.WriteWord(a1, 1)
	b.Load(a1, 8)
	b.Store(a1, 4, 9)
	b.Load(a2, 8) // overflow
	b.Finalize()
	if b.ReadSetSize() != 0 || b.WriteSetSize() != 0 || b.MustStop() {
		t.Fatal("finalize left state behind")
	}
	// After finalize the buffer must behave as fresh: stores do not leak,
	// loads re-snapshot.
	arena.WriteWord(a1, 123)
	v, st := b.Load(a1, 8)
	if st != OK || v != 123 {
		t.Fatalf("post-finalize load = %d, %v", v, st)
	}
	b.Finalize()
	b.Commit(nil) // empty commit is a no-op
	if arena.ReadWord(a1) != 123 {
		t.Fatal("empty commit changed memory")
	}
}

func TestRollbackViaFinalizeDiscardsWrites(t *testing.T) {
	b, arena := newTestBuffer(t, 8, 8)
	arena.WriteWord(64, 7)
	b.Store(64, 8, 100)
	b.Finalize() // rollback = discard without commit
	if arena.ReadWord(64) != 7 {
		t.Fatal("rollback leaked a write")
	}
}

func TestCountersAccumulate(t *testing.T) {
	b, arena := newTestBuffer(t, 8, 8)
	arena.WriteWord(64, 1)
	b.Load(64, 8)
	b.Load(64, 8)
	b.Store(72, 8, 2)
	if b.C.Loads != 2 || b.C.Stores != 1 {
		t.Fatalf("counters %+v", b.C)
	}
	if b.C.ReadSetHits != 1 {
		t.Fatalf("ReadSetHits = %d, want 1 (second load)", b.C.ReadSetHits)
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{
		OK: "OK", Conflict: "Conflict", Full: "Full", Misaligned: "Misaligned", Status(9): "Status(9)",
	} {
		if st.String() != want {
			t.Errorf("Status(%d).String() = %q", st, st.String())
		}
	}
}

func TestAllSizesRoundTrip(t *testing.T) {
	b, arena := newTestBuffer(t, 8, 8)
	arena.WriteWord(128, 0)
	cases := []struct {
		p    mem.Addr
		size int
		v    uint64
	}{
		{128, 1, 0xAB}, {130, 2, 0xCDEF}, {132, 4, 0xDEADBEEF}, {136, 8, 0x1234567890ABCDEF},
	}
	for _, c := range cases {
		if st := b.Store(c.p, c.size, c.v); st != OK {
			t.Fatalf("store size %d: %v", c.size, st)
		}
		v, st := b.Load(c.p, c.size)
		if st != OK || v != c.v {
			t.Fatalf("load size %d = %#x, %v (want %#x)", c.size, v, st, c.v)
		}
	}
	b.Commit(nil)
	if got := arena.ReadUint8(128); got != 0xAB {
		t.Errorf("committed byte %#x", got)
	}
	if got := arena.ReadUint16(130); got != 0xCDEF {
		t.Errorf("committed u16 %#x", got)
	}
	if got := arena.ReadUint32(132); got != 0xDEADBEEF {
		t.Errorf("committed u32 %#x", got)
	}
	if got := arena.ReadWord(136); got != 0x1234567890ABCDEF {
		t.Errorf("committed word %#x", got)
	}
}
