package gbuf

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/mem"
)

// bitmapBuffer is the "bitmap" backend: the address space is divided into
// fixed pages of PageWords words, and each set keeps, per touched page, a
// lazily allocated shadow of the page plus a word-granularity presence
// bitmap. Dense writers (mandelbrot rows, matmult tiles) hit the same few
// pages over and over, so lookups are one map probe plus a bit test, there
// is no hash-collision outcome at all (Conflict and Full never occur), and
// validation/commit walk set bits instead of hash slots. Sparse access
// patterns pay for whole-page shadows — the ablation bench shows where the
// trade flips.
type bitmapBuffer struct {
	arena     *mem.Arena
	pageWords int
	pageShift uint   // log2(pageWords), for divide-free locate
	pageMask  uint64 // pageWords - 1
	read      bitmapSet
	write     bitmapSet
	// anyPartial is sticky: set by the first sub-word store of the
	// speculation; while false the commit walk skips mark scanning.
	anyPartial bool
	C          Counters
}

// bitmapPage shadows one page of one set.
type bitmapPage struct {
	pageIdx uint64
	present []uint64 // PageWords bits: word buffered here
	data    []byte   // PageWords * Word bytes
	mark    []byte   // write pages: byte marks, same size as data
}

// bitmapSet is one per-page map with lazy page allocation and recycling.
type bitmapSet struct {
	pages map[uint64]*bitmapPage
	order []*bitmapPage // touched pages, for iteration and reset
	free  []*bitmapPage // zeroed pages recycled across speculations
	words int           // total buffered words (popcount of all bitmaps)
}

func newBitmapSet() bitmapSet {
	return bitmapSet{pages: make(map[uint64]*bitmapPage)}
}

// page returns the shadow page for pageIdx, allocating (or recycling) it on
// first touch.
func (s *bitmapSet) page(b *bitmapBuffer, pageIdx uint64, withMarks bool) *bitmapPage {
	if pg, ok := s.pages[pageIdx]; ok {
		return pg
	}
	var pg *bitmapPage
	if n := len(s.free); n > 0 {
		pg = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		pg = &bitmapPage{
			present: make([]uint64, (b.pageWords+63)/64),
			data:    make([]byte, b.pageWords*mem.Word),
		}
		if withMarks {
			pg.mark = make([]byte, b.pageWords*mem.Word)
		}
	}
	pg.pageIdx = pageIdx
	s.pages[pageIdx] = pg
	s.order = append(s.order, pg)
	return pg
}

// reset zeroes exactly the set bits of every touched page and recycles the
// pages, keeping reset cost proportional to the words buffered.
func (s *bitmapSet) reset() {
	for _, pg := range s.order {
		for wi, set := range pg.present {
			for set != 0 {
				slot := wi*64 + bits.TrailingZeros64(set)
				off := slot * mem.Word
				for i := off; i < off+mem.Word; i++ {
					pg.data[i] = 0
					if pg.mark != nil {
						pg.mark[i] = 0
					}
				}
				set &= set - 1
			}
			pg.present[wi] = 0
		}
		delete(s.pages, pg.pageIdx)
		s.free = append(s.free, pg)
	}
	s.order = s.order[:0]
	s.words = 0
}

// newBitmapBackend validates the page sizing and builds the backend.
func newBitmapBackend(arena *mem.Arena, cfg Config) (Backend, error) {
	if cfg.PageWords <= 0 {
		return nil, fmt.Errorf("gbuf: bitmap PageWords %d must be positive", cfg.PageWords)
	}
	if cfg.PageWords&(cfg.PageWords-1) != 0 {
		return nil, fmt.Errorf("gbuf: bitmap PageWords %d must be a power of two", cfg.PageWords)
	}
	if cfg.PageWords > 1<<24 {
		return nil, fmt.Errorf("gbuf: bitmap PageWords %d out of range (max 1<<24)", cfg.PageWords)
	}
	return &bitmapBuffer{
		arena:     arena,
		pageWords: cfg.PageWords,
		pageShift: uint(bits.TrailingZeros(uint(cfg.PageWords))),
		pageMask:  uint64(cfg.PageWords - 1),
		read:      newBitmapSet(),
		write:     newBitmapSet(),
	}, nil
}

// locate splits a word base address into (pageIdx, slot within the page).
// PageWords is a power of two, so this is a shift and a mask — no divide on
// the per-access hot path.
func (b *bitmapBuffer) locate(base mem.Addr) (uint64, int) {
	wordIdx := uint64(base) >> 3
	return wordIdx >> b.pageShift, int(wordIdx & b.pageMask)
}

// MustStop always reports false: bitmap sets never park an access.
func (b *bitmapBuffer) MustStop() bool { return false }

// ReadSetSize returns the number of buffered read words.
func (b *bitmapBuffer) ReadSetSize() int { return b.read.words }

// WriteSetSize returns the number of buffered written words.
func (b *bitmapBuffer) WriteSetSize() int { return b.write.words }

// Counters exposes the accumulated activity counters.
func (b *bitmapBuffer) Counters() *Counters { return &b.C }

// writeEntry locates (data, marks) for base in the write set, or nil.
func (b *bitmapBuffer) writeEntry(base mem.Addr) (data, marks []byte) {
	pageIdx, slot := b.locate(base)
	pg, ok := b.write.pages[pageIdx]
	if !ok || pg.present[slot/64]&(1<<uint(slot%64)) == 0 {
		return nil, nil
	}
	off := slot * mem.Word
	return pg.data[off : off+mem.Word], pg.mark[off : off+mem.Word]
}

// readWordEntry returns the read-set snapshot word for base, creating it
// from the arena on first touch.
func (b *bitmapBuffer) readWordEntry(base mem.Addr) []byte {
	pageIdx, slot := b.locate(base)
	pg := b.read.page(b, pageIdx, false)
	off := slot * mem.Word
	word := pg.data[off : off+mem.Word]
	if pg.present[slot/64]&(1<<uint(slot%64)) != 0 {
		b.C.ReadSetHits++
		return word
	}
	pg.present[slot/64] |= 1 << uint(slot%64)
	b.read.words++
	binary.LittleEndian.PutUint64(word, b.arena.ReadWord(base))
	return word
}

// Load mirrors the openaddr read path; no conflict outcome exists.
func (b *bitmapBuffer) Load(p mem.Addr, size int) (uint64, Status) {
	if !validSize(size) || !mem.Aligned(p, size) {
		return 0, Misaligned
	}
	b.C.Loads++
	base := mem.WordBase(p)
	off := mem.WordOffset(p)
	wData, wMarks := b.writeEntry(base)
	if wData != nil && allMarked(wMarks[off:off+size]) {
		b.C.ReadSetHits++
		return readLE(wData[off : off+size]), OK
	}
	rWord := b.readWordEntry(base)
	return mergeLoad(rWord, wData, wMarks, off, size), OK
}

// Store mirrors the openaddr write path; no conflict outcome exists.
func (b *bitmapBuffer) Store(p mem.Addr, size int, v uint64) Status {
	if !validSize(size) || !mem.Aligned(p, size) {
		return Misaligned
	}
	b.C.Stores++
	if size < mem.Word {
		b.anyPartial = true
	}
	base := mem.WordBase(p)
	off := mem.WordOffset(p)
	pageIdx, slot := b.locate(base)
	pg := b.write.page(b, pageIdx, true)
	wordOff := slot * mem.Word
	data := pg.data[wordOff : wordOff+mem.Word]
	marks := pg.mark[wordOff : wordOff+mem.Word]
	if pg.present[slot/64]&(1<<uint(slot%64)) == 0 {
		pg.present[slot/64] |= 1 << uint(slot%64)
		b.write.words++
		if size < mem.Word {
			// First touch of a sub-word slot: seed with the arena word.
			binary.LittleEndian.PutUint64(data, b.arena.ReadWord(base))
		}
	}
	writeLE(data[off:off+size], v, size)
	for i := off; i < off+size; i++ {
		marks[i] = fullMark
	}
	return OK
}

// setBitRange sets count bits of bm starting at bit start and returns how
// many were newly set, whole 64-bit chunks at a time.
func setBitRange(bm []uint64, start, count int) (fresh int) {
	for count > 0 {
		wi, bit := start/64, uint(start%64)
		n := 64 - int(bit)
		if n > count {
			n = count
		}
		mask := rangeMask(bit, n)
		fresh += n - bits.OnesCount64(bm[wi]&mask)
		bm[wi] |= mask
		start += n
		count -= n
	}
	return fresh
}

// countBitRange returns how many of the count bits starting at start are
// set in bm.
func countBitRange(bm []uint64, start, count int) (set int) {
	for count > 0 {
		wi, bit := start/64, uint(start%64)
		n := 64 - int(bit)
		if n > count {
			n = count
		}
		set += bits.OnesCount64(bm[wi] & rangeMask(bit, n))
		start += n
		count -= n
	}
	return set
}

// rangeMask builds the n-bit mask starting at bit (n in [1,64]).
func rangeMask(bit uint, n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1)<<uint(n) - 1) << bit
}

// LoadRange performs a buffered read of len(dst)/WORD consecutive words at
// the word-aligned address p. A contiguous run maps to contiguous slots of
// at most a few pages, so the hot paths — the whole span missing (first
// touch) or the whole span present (re-read) — are one page probe, one
// bitmap splice and one memcpy-style copy per page.
func (b *bitmapBuffer) LoadRange(p mem.Addr, dst []byte) Status {
	nWords, ok := rangeGeometry(p, len(dst))
	if !ok {
		return Misaligned
	}
	if nWords == 0 {
		return OK
	}
	b.C.Loads += uint64(nWords)
	b.arena.ReadWords(p, dst)
	for nWords > 0 {
		pageIdx, slot := b.locate(p)
		count := b.pageWords - slot
		if count > nWords {
			count = nWords
		}
		b.loadPageRange(pageIdx, slot, count, dst[:count*mem.Word])
		p += mem.Addr(count * mem.Word)
		dst = dst[count*mem.Word:]
		nWords -= count
	}
	return OK
}

// loadPageRange resolves count words of one page: present read-set words
// overwrite dst with their snapshots, missing words are snapshotted from
// the arena bytes already sitting in dst, and write-set bytes overlay
// last.
func (b *bitmapBuffer) loadPageRange(pageIdx uint64, slot, count int, dst []byte) {
	rpg := b.read.page(b, pageIdx, false)
	wpg := b.write.pages[pageIdx] // one probe per page, not per word
	off := slot * mem.Word
	if wpg == nil {
		switch countBitRange(rpg.present, slot, count) {
		case 0: // whole span untouched: snapshot the arena bytes in one splice
			copy(rpg.data[off:off+count*mem.Word], dst)
			b.read.words += setBitRange(rpg.present, slot, count)
			return
		case count: // whole span buffered: serve the snapshots in one splice
			b.C.ReadSetHits += uint64(count)
			copy(dst, rpg.data[off:off+count*mem.Word])
			return
		}
	}
	for k := 0; k < count; k++ {
		s := slot + k
		wi, bit := s/64, uint64(1)<<uint(s%64)
		out := dst[k*mem.Word : (k+1)*mem.Word]
		var wData, wMarks []byte
		if wpg != nil && wpg.present[wi]&bit != 0 {
			woff := s * mem.Word
			wData, wMarks = wpg.data[woff:woff+mem.Word], wpg.mark[woff:woff+mem.Word]
			if allMarked8(wMarks) {
				b.C.ReadSetHits++
				copy(out, wData)
				continue
			}
		}
		roff := s * mem.Word
		rWord := rpg.data[roff : roff+mem.Word]
		if rpg.present[wi]&bit != 0 {
			b.C.ReadSetHits++
			copy(out, rWord)
		} else {
			rpg.present[wi] |= bit
			b.read.words++
			copy(rWord, out)
		}
		if wData != nil {
			for j := 0; j < mem.Word; j++ {
				if wMarks[j] == fullMark {
					out[j] = wData[j]
				}
			}
		}
	}
}

// StoreRange performs a buffered write of len(src)/WORD consecutive words
// at the word-aligned address p: per page, one shadow splice, one mark
// fill and one bitmap-range set.
func (b *bitmapBuffer) StoreRange(p mem.Addr, src []byte) Status {
	nWords, ok := rangeGeometry(p, len(src))
	if !ok {
		return Misaligned
	}
	b.C.Stores += uint64(nWords)
	for nWords > 0 {
		pageIdx, slot := b.locate(p)
		count := b.pageWords - slot
		if count > nWords {
			count = nWords
		}
		pg := b.write.page(b, pageIdx, true)
		off := slot * mem.Word
		copy(pg.data[off:off+count*mem.Word], src)
		setFullMarks(pg.mark[off : off+count*mem.Word])
		b.write.words += setBitRange(pg.present, slot, count)
		p += mem.Addr(count * mem.Word)
		src = src[count*mem.Word:]
		nWords -= count
	}
	return OK
}

// StoreFill performs a buffered write of nWords copies of the word v at the
// word-aligned address p (the memset shape): per page, one shadow fill, one
// mark fill and one bitmap-range set.
func (b *bitmapBuffer) StoreFill(p mem.Addr, nWords int, v uint64) Status {
	if nWords < 0 || !mem.Aligned(p, mem.Word) {
		return Misaligned
	}
	b.C.Stores += uint64(nWords)
	for nWords > 0 {
		pageIdx, slot := b.locate(p)
		count := b.pageWords - slot
		if count > nWords {
			count = nWords
		}
		pg := b.write.page(b, pageIdx, true)
		off := slot * mem.Word
		dst := pg.data[off : off+count*mem.Word]
		for w := 0; w+mem.Word <= len(dst); w += mem.Word {
			binary.LittleEndian.PutUint64(dst[w:], v)
		}
		setFullMarks(pg.mark[off : off+count*mem.Word])
		b.write.words += setBitRange(pg.present, slot, count)
		p += mem.Addr(count * mem.Word)
		nWords -= count
	}
	return OK
}

// forEachRun visits every maximal run of consecutive buffered words of a
// set (runs are clipped at 64-slot bitmap-word boundaries) as
// (base, data, marks); marks is nil for the read set.
func (b *bitmapBuffer) forEachRun(s *bitmapSet, fn func(base mem.Addr, data, marks []byte) bool) bool {
	for _, pg := range s.order {
		pageBase := pg.pageIdx * uint64(b.pageWords) * mem.Word
		for wi, set := range pg.present {
			for set != 0 {
				start := bits.TrailingZeros64(set)
				run := bits.TrailingZeros64(^(set >> uint(start)))
				slot := wi*64 + start
				off := slot * mem.Word
				base := mem.Addr(pageBase + uint64(off))
				var marks []byte
				if pg.mark != nil {
					marks = pg.mark[off : off+run*mem.Word]
				}
				if !fn(base, pg.data[off:off+run*mem.Word], marks) {
					return false
				}
				if start+run >= 64 {
					set = 0
				} else {
					set &^= rangeMask(uint(start), run)
				}
			}
		}
	}
	return true
}

// validateWalk is the read-set comparison shared by Validate, PreValidate
// and ValidateDirty: one bulk comparison per run of consecutive buffered
// words; a non-nil dirty oracle skips runs on clean pages.
func (b *bitmapBuffer) validateWalk(dirty func(mem.Addr, int) bool) bool {
	return b.forEachRun(&b.read, func(base mem.Addr, data, _ []byte) bool {
		if dirty != nil && !dirty(base, len(data)) {
			return true
		}
		return b.arena.EqualWords(base, data)
	})
}

// Validate checks every read-set word against the arena.
func (b *bitmapBuffer) Validate() bool {
	b.C.Validations++
	if !b.validateWalk(nil) {
		b.C.ValidationFail++
		return false
	}
	return true
}

// PreValidate runs the read-set walk without counter effects.
func (b *bitmapBuffer) PreValidate() bool { return b.validateWalk(nil) }

// ValidateDirty re-checks only the possibly-dirty runs, with Validate's
// counter effects.
func (b *bitmapBuffer) ValidateDirty(dirty func(base mem.Addr, nBytes int) bool) bool {
	b.C.Validations++
	if !b.validateWalk(dirty) {
		b.C.ValidationFail++
		return false
	}
	return true
}

// Commit applies the write set to the arena: fully-marked runs are spliced
// with one arena write each, partially-marked words fall back to the
// marked-byte walk. A non-nil mark is invoked after each applied run.
func (b *bitmapBuffer) Commit(mark func(base mem.Addr, nBytes int)) {
	b.C.Commits++
	b.forEachRun(&b.write, func(base mem.Addr, data, marks []byte) bool {
		if !b.anyPartial || allMarkedWords(marks) {
			commitRun(b.arena, &b.C, base, data, mark)
			return true
		}
		for w := 0; w < len(data); w += mem.Word {
			commitWord(b.arena, &b.C, base+mem.Addr(w), data[w:w+mem.Word], marks[w:w+mem.Word], mark)
		}
		return true
	})
}

// Finalize clears both sets in time proportional to the words buffered.
func (b *bitmapBuffer) Finalize() {
	b.read.reset()
	b.write.reset()
	b.anyPartial = false
}
