package gbuf

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mem"
)

// This file is the bulk-path oracle: LoadRange/StoreRange must be
// observationally identical to a word-at-a-time Load/Store loop on every
// backend — same statuses, same read/write sets, same counters, same
// validation outcome and same committed arena bytes — including ranges
// that straddle bitmap page boundaries and ranges that run into openaddr
// hash conflicts and overflow exhaustion.

// refLoadRange is the word-at-a-time reference for LoadRange: it stops at
// the first Full (the caller would roll back there) and folds the per-word
// statuses into the worst outcome.
func refLoadRange(b Backend, p mem.Addr, dst []byte) Status {
	if len(dst)%mem.Word != 0 || !mem.Aligned(p, mem.Word) {
		return Misaligned
	}
	st := OK
	for k := 0; k+mem.Word <= len(dst); k += mem.Word {
		v, s := b.Load(p+mem.Addr(k), mem.Word)
		if s == Full {
			return Full
		}
		st = worse(st, s)
		binary.LittleEndian.PutUint64(dst[k:], v)
	}
	return st
}

// refStoreRange is the word-at-a-time reference for StoreRange.
func refStoreRange(b Backend, p mem.Addr, src []byte) Status {
	if len(src)%mem.Word != 0 || !mem.Aligned(p, mem.Word) {
		return Misaligned
	}
	st := OK
	for k := 0; k+mem.Word <= len(src); k += mem.Word {
		s := b.Store(p+mem.Addr(k), mem.Word, binary.LittleEndian.Uint64(src[k:]))
		if s == Full {
			return Full
		}
		st = worse(st, s)
	}
	return st
}

// bulkStressConfigs sizes every backend small enough that random scripts
// hit hash conflicts, overflow exhaustion and page-boundary straddling.
func bulkStressConfigs() map[string]Config {
	return map[string]Config{
		"openaddr":            {Backend: "openaddr", LogWords: 6, OverflowCap: 4},
		"openaddr/nooverflow": {Backend: "openaddr", LogWords: 6, OverflowCap: NoOverflow},
		"chain":               {Backend: "chain", LogBuckets: 3},
		"bitmap":              {Backend: "bitmap", PageWords: 8},
	}
}

const bulkArenaBytes = 1 << 12

func newSeededArena(t *testing.T, rng *rand.Rand) *mem.Arena {
	t.Helper()
	a, err := mem.NewArena(bulkArenaBytes)
	if err != nil {
		t.Fatal(err)
	}
	for p := mem.Addr(mem.Word); p < mem.Addr(bulkArenaBytes); p += mem.Word {
		a.WriteWord(p, rng.Uint64())
	}
	return a
}

// TestBulkMatchesWordAtATime drives random access scripts through a bulk
// buffer and a word-at-a-time reference buffer over identically seeded
// arenas and requires observational equivalence at every step and at
// commit.
func TestBulkMatchesWordAtATime(t *testing.T) {
	for name, cfg := range bulkStressConfigs() {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 20; seed++ {
				runBulkScript(t, cfg, seed)
			}
		})
	}
}

func runBulkScript(t *testing.T, cfg Config, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	arenaBulk := newSeededArena(t, rand.New(rand.NewSource(seed^0x5DEECE66D)))
	arenaRef := newSeededArena(t, rand.New(rand.NewSource(seed^0x5DEECE66D)))
	bulk, err := NewBackend(arenaBulk, cfg.WithDefaults())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewBackend(arenaRef, cfg.WithDefaults())
	if err != nil {
		t.Fatal(err)
	}

	// Addresses live in a small window so slots collide; ranges up to 32
	// words straddle several 8-word bitmap pages and wrap hash-map regions.
	randWordAddr := func() mem.Addr {
		return mem.Addr(mem.Word * (1 + rng.Intn(200)))
	}
	sizes := []int{1, 2, 4, 8}

	dead := false // a Full was observed: the thread would have rolled back
	for step := 0; step < 300 && !dead; step++ {
		ctx := fmt.Sprintf("cfg=%+v seed=%d step=%d", cfg, seed, step)
		switch rng.Intn(5) {
		case 0: // word store
			size := sizes[rng.Intn(len(sizes))]
			p := randWordAddr() + mem.Addr(rng.Intn(mem.Word/size)*size)
			v := rng.Uint64()
			s1 := bulk.Store(p, size, v)
			s2 := ref.Store(p, size, v)
			if s1 != s2 {
				t.Fatalf("%s: word store status %v != %v", ctx, s1, s2)
			}
			dead = s1 == Full
		case 1: // word load
			size := sizes[rng.Intn(len(sizes))]
			p := randWordAddr() + mem.Addr(rng.Intn(mem.Word/size)*size)
			v1, s1 := bulk.Load(p, size)
			v2, s2 := ref.Load(p, size)
			if s1 != s2 || v1 != v2 {
				t.Fatalf("%s: word load (%#x,%v) != (%#x,%v)", ctx, v1, s1, v2, s2)
			}
			dead = s1 == Full
		case 2: // range store
			p := randWordAddr()
			n := rng.Intn(33) * mem.Word
			src := make([]byte, n)
			rng.Read(src)
			s1 := bulk.StoreRange(p, src)
			s2 := refStoreRange(ref, p, src)
			if s1 != s2 {
				t.Fatalf("%s: range store status %v != %v", ctx, s1, s2)
			}
			dead = s1 == Full
		case 3: // range load
			p := randWordAddr()
			n := rng.Intn(33) * mem.Word
			d1 := make([]byte, n)
			d2 := make([]byte, n)
			s1 := bulk.LoadRange(p, d1)
			s2 := refLoadRange(ref, p, d2)
			if s1 != s2 {
				t.Fatalf("%s: range load status %v != %v", ctx, s1, s2)
			}
			dead = s1 == Full
			if dead {
				break
			}
			for i := range d1 {
				if d1[i] != d2[i] {
					t.Fatalf("%s: range load byte %d: %#x != %#x", ctx, i, d1[i], d2[i])
				}
			}
		case 4: // a non-speculative write lands in both arenas (validation fodder)
			p := randWordAddr()
			v := rng.Uint64()
			arenaBulk.WriteWord(p, v)
			arenaRef.WriteWord(p, v)
		}
		if bulk.MustStop() != ref.MustStop() {
			t.Fatalf("%s: MustStop %v != %v", ctx, bulk.MustStop(), ref.MustStop())
		}
	}

	ctx := fmt.Sprintf("cfg=%+v seed=%d", cfg, seed)
	if r1, r2 := bulk.ReadSetSize(), ref.ReadSetSize(); r1 != r2 {
		t.Fatalf("%s: read set size %d != %d", ctx, r1, r2)
	}
	if w1, w2 := bulk.WriteSetSize(), ref.WriteSetSize(); w1 != w2 {
		t.Fatalf("%s: write set size %d != %d", ctx, w1, w2)
	}
	if c1, c2 := *bulk.Counters(), *ref.Counters(); c1 != c2 {
		t.Fatalf("%s: counters\n bulk %+v\n ref  %+v", ctx, c1, c2)
	}
	if dead {
		return // rolled back: buffers are discarded, nothing commits
	}
	v1, v2 := bulk.Validate(), ref.Validate()
	if v1 != v2 {
		t.Fatalf("%s: validate %v != %v", ctx, v1, v2)
	}
	if !v1 {
		return
	}
	bulk.Commit(nil)
	ref.Commit(nil)
	if c1, c2 := *bulk.Counters(), *ref.Counters(); c1 != c2 {
		t.Fatalf("%s: post-commit counters\n bulk %+v\n ref  %+v", ctx, c1, c2)
	}
	for p := mem.Addr(mem.Word); p < mem.Addr(bulkArenaBytes); p += mem.Word {
		if a, b := arenaBulk.ReadWord(p), arenaRef.ReadWord(p); a != b {
			t.Fatalf("%s: committed arena word %d: %#x != %#x", ctx, p, a, b)
		}
	}
}

// TestBulkMisalignedGeometry checks that every backend rejects non-word
// range geometries without touching any state.
func TestBulkMisalignedGeometry(t *testing.T) {
	for name, cfg := range bulkStressConfigs() {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			a, err := mem.NewArena(1 << 10)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewBackend(a, cfg.WithDefaults())
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 2*mem.Word)
			if st := b.LoadRange(12, buf); st != Misaligned {
				t.Fatalf("unaligned LoadRange: %v", st)
			}
			if st := b.StoreRange(16, buf[:mem.Word+1]); st != Misaligned {
				t.Fatalf("ragged StoreRange: %v", st)
			}
			if b.ReadSetSize() != 0 || b.WriteSetSize() != 0 {
				t.Fatalf("misaligned geometry touched the sets: %d/%d",
					b.ReadSetSize(), b.WriteSetSize())
			}
		})
	}
}

// TestBulkValidationDetectsConflict makes sure a run-batched validation
// still sees a single clobbered word in the middle of a bulk-loaded run.
func TestBulkValidationDetectsConflict(t *testing.T) {
	for name, cfg := range bulkStressConfigs() {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			a, err := mem.NewArena(1 << 10)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewBackend(a, cfg.WithDefaults())
			if err != nil {
				t.Fatal(err)
			}
			base := mem.Addr(64)
			dst := make([]byte, 24*mem.Word)
			if st := b.LoadRange(base, dst); st != OK {
				t.Fatalf("LoadRange: %v", st)
			}
			if !b.Validate() {
				t.Fatal("clean validation failed")
			}
			a.WriteWord(base+13*mem.Word, 0xDEAD)
			if b.Validate() {
				t.Fatal("validation missed a clobbered word inside a run")
			}
		})
	}
}
