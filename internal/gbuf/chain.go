package gbuf

import (
	"encoding/binary"
	"fmt"
	"slices"

	"repro/internal/mem"
)

// chainBuffer is the "chain" backend: read and write sets organized as hash
// maps with dynamically chained buckets. Unlike the paper's static
// open-addressing maps, a hash collision simply extends the bucket's chain —
// there is no overflow parking (Conflict) and no capacity exhaustion (Full),
// so speculative threads never stop or roll back because of the buffer's
// organization. The price is pointer chasing on lookups and per-entry
// growth of the entry pool; the ablation bench quantifies the trade-off.
//
// Entries live in one slice per set (indices, not pointers, chain the
// buckets), so a speculation allocates at most twice after its high-water
// mark is reached, and Finalize resets in time proportional to the touched
// buckets.
type chainBuffer struct {
	arena *mem.Arena
	read  chainSet
	write chainSet
	// anyPartial is sticky: set by the first sub-word store of the
	// speculation; while false the commit walk skips mark scanning.
	anyPartial bool
	C          Counters

	// Commit scratch, reused across speculations: entry indices in address
	// order and a staging buffer for splicing non-contiguous entries into
	// one arena run.
	commitIdx     []int32
	commitScratch []byte
}

// chainEntry is one buffered word on a bucket chain.
type chainEntry struct {
	base mem.Addr
	next int32 // next entry index on the chain, -1 = end
	data [mem.Word]byte
	mark [mem.Word]byte // write set: which bytes were written
}

// chainSet is one chained-bucket hash map.
type chainSet struct {
	heads   []int32 // bucket heads, -1 = empty
	touched []int32 // bucket indices in use, for proportional reset
	entries []chainEntry
	mask    uint64
}

func newChainSet(nBuckets int) chainSet {
	s := chainSet{
		heads:   make([]int32, nBuckets),
		touched: make([]int32, 0, nBuckets),
		mask:    uint64(nBuckets - 1),
	}
	for i := range s.heads {
		s.heads[i] = -1
	}
	return s
}

func (s *chainSet) bucket(base mem.Addr) int {
	return int((uint64(base) >> 3) & s.mask)
}

// lookup returns the entry for base, or nil.
func (s *chainSet) lookup(base mem.Addr) *chainEntry {
	for i := s.heads[s.bucket(base)]; i >= 0; i = s.entries[i].next {
		if s.entries[i].base == base {
			return &s.entries[i]
		}
	}
	return nil
}

// insert prepends a fresh entry for base to its bucket chain.
func (s *chainSet) insert(base mem.Addr) *chainEntry {
	b := s.bucket(base)
	if s.heads[b] < 0 {
		s.touched = append(s.touched, int32(b))
	}
	s.entries = append(s.entries, chainEntry{base: base, next: s.heads[b]})
	s.heads[b] = int32(len(s.entries) - 1)
	return &s.entries[len(s.entries)-1]
}

// reset clears exactly the touched buckets and drops all entries.
func (s *chainSet) reset() {
	for _, b := range s.touched {
		s.heads[b] = -1
	}
	s.touched = s.touched[:0]
	s.entries = s.entries[:0]
}

// newChainBackend validates the chain sizing and builds the backend.
func newChainBackend(arena *mem.Arena, cfg Config) (Backend, error) {
	if cfg.LogBuckets < 1 || cfg.LogBuckets > 30 {
		return nil, fmt.Errorf("gbuf: chain LogBuckets %d out of range [1,30]", cfg.LogBuckets)
	}
	n := 1 << cfg.LogBuckets
	return &chainBuffer{
		arena: arena,
		read:  newChainSet(n),
		write: newChainSet(n),
	}, nil
}

// MustStop always reports false: chains never park an access.
func (b *chainBuffer) MustStop() bool { return false }

// ReadSetSize returns the number of buffered read words.
func (b *chainBuffer) ReadSetSize() int { return len(b.read.entries) }

// WriteSetSize returns the number of buffered written words.
func (b *chainBuffer) WriteSetSize() int { return len(b.write.entries) }

// Counters exposes the accumulated activity counters.
func (b *chainBuffer) Counters() *Counters { return &b.C }

// readWordEntry returns the read-set snapshot word for base, creating it
// from the arena on first touch.
func (b *chainBuffer) readWordEntry(base mem.Addr) []byte {
	if e := b.read.lookup(base); e != nil {
		b.C.ReadSetHits++
		return e.data[:]
	}
	e := b.read.insert(base)
	binary.LittleEndian.PutUint64(e.data[:], b.arena.ReadWord(base))
	return e.data[:]
}

// Load mirrors the openaddr read path without any conflict outcome.
func (b *chainBuffer) Load(p mem.Addr, size int) (uint64, Status) {
	if !validSize(size) || !mem.Aligned(p, size) {
		return 0, Misaligned
	}
	b.C.Loads++
	base := mem.WordBase(p)
	off := mem.WordOffset(p)
	var wData, wMarks []byte
	if e := b.write.lookup(base); e != nil {
		wData, wMarks = e.data[:], e.mark[:]
	}
	if wData != nil && allMarked(wMarks[off:off+size]) {
		b.C.ReadSetHits++
		return readLE(wData[off : off+size]), OK
	}
	rWord := b.readWordEntry(base)
	return mergeLoad(rWord, wData, wMarks, off, size), OK
}

// Store mirrors the openaddr write path without any conflict outcome.
func (b *chainBuffer) Store(p mem.Addr, size int, v uint64) Status {
	if !validSize(size) || !mem.Aligned(p, size) {
		return Misaligned
	}
	b.C.Stores++
	if size < mem.Word {
		b.anyPartial = true
	}
	base := mem.WordBase(p)
	off := mem.WordOffset(p)
	e := b.write.lookup(base)
	if e == nil {
		e = b.write.insert(base)
		if size < mem.Word {
			// First touch of a sub-word slot: seed with the arena word.
			binary.LittleEndian.PutUint64(e.data[:], b.arena.ReadWord(base))
		}
	}
	writeLE(e.data[off:off+size], v, size)
	for i := off; i < off+size; i++ {
		e.mark[i] = fullMark
	}
	return OK
}

// LoadRange performs a buffered read of len(dst)/WORD consecutive words at
// the word-aligned address p. The chained organization still probes one
// bucket per word — buckets are reached by hashing, not adjacency — but the
// bulk path pays the interface crossing and the arena read once for the
// whole run and bulk-appends missed snapshots to the entry pool.
func (b *chainBuffer) LoadRange(p mem.Addr, dst []byte) Status {
	nWords, ok := rangeGeometry(p, len(dst))
	if !ok {
		return Misaligned
	}
	if nWords == 0 {
		return OK
	}
	b.C.Loads += uint64(nWords)
	b.arena.ReadWords(p, dst)
	hasWrites := len(b.write.entries) > 0
	for k := 0; k < nWords; k++ {
		base := p + mem.Addr(k*mem.Word)
		out := dst[k*mem.Word : (k+1)*mem.Word]
		var wData, wMarks []byte
		if hasWrites {
			if e := b.write.lookup(base); e != nil {
				wData, wMarks = e.data[:], e.mark[:]
				if allMarked8(wMarks) {
					b.C.ReadSetHits++
					copy(out, wData)
					continue
				}
			}
		}
		if e := b.read.lookup(base); e != nil {
			b.C.ReadSetHits++
			copy(out, e.data[:])
		} else {
			// Snapshot the arena word already sitting in dst.
			copy(b.read.insert(base).data[:], out)
		}
		if wData != nil {
			for j := 0; j < mem.Word; j++ {
				if wMarks[j] == fullMark {
					out[j] = wData[j]
				}
			}
		}
	}
	return OK
}

// StoreRange performs a buffered write of len(src)/WORD consecutive words
// at the word-aligned address p; whole words need no arena seeding and set
// all eight marks at once.
func (b *chainBuffer) StoreRange(p mem.Addr, src []byte) Status {
	nWords, ok := rangeGeometry(p, len(src))
	if !ok {
		return Misaligned
	}
	b.C.Stores += uint64(nWords)
	for k := 0; k < nWords; k++ {
		base := p + mem.Addr(k*mem.Word)
		e := b.write.lookup(base)
		if e == nil {
			e = b.write.insert(base)
		}
		copy(e.data[:], src[k*mem.Word:(k+1)*mem.Word])
		binary.LittleEndian.PutUint64(e.mark[:], onesWord)
	}
	return OK
}

// StoreFill performs a buffered write of nWords copies of the word v at the
// word-aligned address p (the memset shape), mirroring StoreRange.
func (b *chainBuffer) StoreFill(p mem.Addr, nWords int, v uint64) Status {
	if nWords < 0 || !mem.Aligned(p, mem.Word) {
		return Misaligned
	}
	b.C.Stores += uint64(nWords)
	for k := 0; k < nWords; k++ {
		base := p + mem.Addr(k*mem.Word)
		e := b.write.lookup(base)
		if e == nil {
			e = b.write.insert(base)
		}
		binary.LittleEndian.PutUint64(e.data[:], v)
		binary.LittleEndian.PutUint64(e.mark[:], onesWord)
	}
	return OK
}

// validateWalk is the read-set comparison shared by Validate, PreValidate
// and ValidateDirty; a non-nil dirty oracle skips words on clean pages.
func (b *chainBuffer) validateWalk(dirty func(mem.Addr, int) bool) bool {
	for i := range b.read.entries {
		e := &b.read.entries[i]
		if dirty != nil && !dirty(e.base, mem.Word) {
			continue
		}
		if binary.LittleEndian.Uint64(e.data[:]) != b.arena.ReadWord(e.base) {
			return false
		}
	}
	return true
}

// Validate checks every read-set word against the arena.
func (b *chainBuffer) Validate() bool {
	b.C.Validations++
	if !b.validateWalk(nil) {
		b.C.ValidationFail++
		return false
	}
	return true
}

// PreValidate runs the read-set walk without counter effects.
func (b *chainBuffer) PreValidate() bool { return b.validateWalk(nil) }

// ValidateDirty re-checks only the possibly-dirty words, with Validate's
// counter effects.
func (b *chainBuffer) ValidateDirty(dirty func(base mem.Addr, nBytes int) bool) bool {
	b.C.Validations++
	if !b.validateWalk(dirty) {
		b.C.ValidationFail++
		return false
	}
	return true
}

// Commit applies the write set to the arena as address-sorted maximal runs:
// entry indices are sorted by base address, fully-marked consecutive words
// are staged into a reusable scratch buffer and spliced with one arena
// write each, and partially-marked words fall back to the marked-byte walk.
// Chained insertion order is hash order, so without the sort even a dense
// writer would commit word at a time.
func (b *chainBuffer) Commit(mark func(base mem.Addr, nBytes int)) {
	b.C.Commits++
	n := len(b.write.entries)
	if n == 0 {
		return
	}
	idx := b.commitIdx[:0]
	for i := 0; i < n; i++ {
		idx = append(idx, int32(i))
	}
	slices.SortFunc(idx, func(x, y int32) int {
		if b.write.entries[x].base < b.write.entries[y].base {
			return -1
		}
		return 1
	})
	b.commitIdx = idx
	for k := 0; k < n; {
		e := &b.write.entries[idx[k]]
		run := 0
		for k+run < n {
			f := &b.write.entries[idx[k+run]]
			if f.base != e.base+mem.Addr(run*mem.Word) ||
				(b.anyPartial && !allMarked8(f.mark[:])) {
				break
			}
			run++
		}
		if run > 1 {
			need := run * mem.Word
			if cap(b.commitScratch) < need {
				b.commitScratch = make([]byte, need)
			}
			scratch := b.commitScratch[:need]
			for r := 0; r < run; r++ {
				copy(scratch[r*mem.Word:(r+1)*mem.Word], b.write.entries[idx[k+r]].data[:])
			}
			commitRun(b.arena, &b.C, e.base, scratch, mark)
			k += run
			continue
		}
		commitWord(b.arena, &b.C, e.base, e.data[:], e.mark[:], mark)
		k++
	}
}

// Finalize clears both sets in time proportional to the buckets touched.
func (b *chainBuffer) Finalize() {
	b.read.reset()
	b.write.reset()
	b.anyPartial = false
}
