package gbuf

import "repro/internal/mem"

// FaultyBackend wraps a Backend for chaos testing: every write-path call
// first consults Trip, and a tripped call returns Full without reaching
// the wrapped backend — exactly the status an exhausted buffer produces,
// so the runtime's real overflow-rollback machinery runs end to end. Read
// and protocol methods pass straight through.
type FaultyBackend struct {
	Backend
	// Trip reports whether the next write-path call should fail Full.
	Trip func() bool
}

// Store injects a Full status when Trip fires.
func (f *FaultyBackend) Store(p mem.Addr, size int, v uint64) Status {
	if f.Trip() {
		return Full
	}
	return f.Backend.Store(p, size, v)
}

// StoreRange injects a Full status when Trip fires.
func (f *FaultyBackend) StoreRange(p mem.Addr, src []byte) Status {
	if f.Trip() {
		return Full
	}
	return f.Backend.StoreRange(p, src)
}

// StoreFill injects a Full status when Trip fires.
func (f *FaultyBackend) StoreFill(p mem.Addr, nWords int, v uint64) Status {
	if f.Trip() {
		return Full
	}
	return f.Backend.StoreFill(p, nWords, v)
}
