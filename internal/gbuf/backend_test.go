package gbuf

import (
	"strings"
	"testing"

	"repro/internal/mem"
)

func TestBackendsRegistered(t *testing.T) {
	got := Backends()
	want := []string{"bitmap", "chain", "openaddr"}
	if len(got) != len(want) {
		t.Fatalf("Backends() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Backends() = %v, want %v", got, want)
		}
	}
}

func TestNewBackendDefaultsToOpenaddr(t *testing.T) {
	arena, _ := mem.NewArena(1 << 12)
	b, err := NewBackend(arena, Config{LogWords: 8, OverflowCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.(*Buffer); !ok {
		t.Fatalf("empty Backend name built %T, want *Buffer", b)
	}
}

func TestNewBackendUnknownName(t *testing.T) {
	arena, _ := mem.NewArena(1 << 12)
	_, err := NewBackend(arena, Config{Backend: "cuckoo"})
	if err == nil || !strings.Contains(err.Error(), "cuckoo") {
		t.Fatalf("unknown backend error = %v", err)
	}
}

func TestConfigValidationAtConstruction(t *testing.T) {
	arena, _ := mem.NewArena(1 << 12)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"openaddr zero LogWords", Config{Backend: "openaddr", LogWords: 0, OverflowCap: 4}},
		{"openaddr negative LogWords", Config{Backend: "openaddr", LogWords: -3, OverflowCap: 4}},
		{"openaddr LogWords over 30", Config{Backend: "openaddr", LogWords: 31, OverflowCap: 4}},
		{"openaddr negative OverflowCap", Config{Backend: "openaddr", LogWords: 8, OverflowCap: -2}},
		{"chain zero LogBuckets", Config{Backend: "chain", LogBuckets: 0}},
		{"chain LogBuckets over 30", Config{Backend: "chain", LogBuckets: 31}},
		{"bitmap zero PageWords", Config{Backend: "bitmap", PageWords: 0}},
		{"bitmap negative PageWords", Config{Backend: "bitmap", PageWords: -8}},
		{"bitmap non-power-of-two PageWords", Config{Backend: "bitmap", PageWords: 48}},
		{"bitmap giant PageWords", Config{Backend: "bitmap", PageWords: 1 << 25}},
	}
	for _, c := range cases {
		if _, err := NewBackend(arena, c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestNoOverflowSentinel: OverflowCap 0 selects the default capacity, while
// NoOverflow requests a strict buffer whose first hash conflict is Full.
func TestNoOverflowSentinel(t *testing.T) {
	if c := (Config{OverflowCap: NoOverflow}).WithDefaults(); c.OverflowCap != NoOverflow {
		t.Fatalf("WithDefaults rewrote NoOverflow to %d", c.OverflowCap)
	}
	arena, _ := mem.NewArena(1 << 12)
	b, err := New(arena, Config{LogWords: 1, OverflowCap: NoOverflow})
	if err != nil {
		t.Fatal(err)
	}
	if st := b.Store(64, 8, 1); st != OK {
		t.Fatal(st)
	}
	// 2-word map: 64 and 64+2*8 collide; with no parking the conflict is
	// immediately Full.
	if st := b.Store(64+2*8, 8, 2); st != Full {
		t.Fatalf("no-overflow conflict = %v, want Full", st)
	}
}

func TestConfigWithDefaults(t *testing.T) {
	d := Config{}.WithDefaults()
	if d.Backend != DefaultBackend || d.LogWords != 16 || d.OverflowCap != 64 ||
		d.LogBuckets != 12 || d.PageWords != 512 {
		t.Fatalf("WithDefaults = %+v", d)
	}
	// Set fields survive.
	c := Config{Backend: "chain", LogBuckets: 5}.WithDefaults()
	if c.Backend != "chain" || c.LogBuckets != 5 {
		t.Fatalf("WithDefaults clobbered set fields: %+v", c)
	}
	// Every defaulted config constructs.
	arena, _ := mem.NewArena(1 << 12)
	for _, name := range Backends() {
		if _, err := NewBackend(arena, Config{Backend: name}.WithDefaults()); err != nil {
			t.Errorf("%s: defaulted config rejected: %v", name, err)
		}
	}
}

// TestChainAbsorbsCollisions: addresses that collide in every bucket just
// chain — no Conflict, no Full, no MustStop — and all of them validate and
// commit.
func TestChainAbsorbsCollisions(t *testing.T) {
	arena, _ := mem.NewArena(1 << 14)
	b, err := NewBackend(arena, Config{Backend: "chain", LogBuckets: 1}) // 2 buckets
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	for i := 0; i < n; i++ {
		p := mem.Addr(8 * (1 + i))
		arena.WriteWord(p, uint64(i))
		if v, st := b.Load(p, 8); st != OK || v != uint64(i) {
			t.Fatalf("load %d = %d, %v", i, v, st)
		}
		if st := b.Store(p, 8, uint64(i)*3); st != OK {
			t.Fatalf("store %d: %v", i, st)
		}
	}
	if b.MustStop() {
		t.Fatal("chain backend set MustStop")
	}
	if b.ReadSetSize() != n || b.WriteSetSize() != n {
		t.Fatalf("set sizes %d/%d, want %d/%d", b.ReadSetSize(), b.WriteSetSize(), n, n)
	}
	if c := b.Counters(); c.Conflicts != 0 {
		t.Fatalf("chain counted %d conflicts", c.Conflicts)
	}
	if !b.Validate() {
		t.Fatal("validation failed without interference")
	}
	b.Commit(nil)
	for i := 0; i < n; i++ {
		if got := arena.ReadWord(mem.Addr(8 * (1 + i))); got != uint64(i)*3 {
			t.Fatalf("commit word %d = %d", i, got)
		}
	}
}

// TestChainReadYourOwnWrites: a fully-written word never enters the read
// set (same contract as openaddr).
func TestChainReadYourOwnWrites(t *testing.T) {
	arena, _ := mem.NewArena(1 << 12)
	b, _ := NewBackend(arena, Config{Backend: "chain", LogBuckets: 4})
	b.Store(64, 8, 42)
	if v, st := b.Load(64, 8); st != OK || v != 42 {
		t.Fatalf("read-own-write = %d, %v", v, st)
	}
	if b.ReadSetSize() != 0 {
		t.Fatalf("ReadSetSize = %d after write-then-read", b.ReadSetSize())
	}
}

// TestBitmapDenseWrites: a dense sweep touches few pages, counts words
// exactly, and commits whole words on the fast path.
func TestBitmapDenseWrites(t *testing.T) {
	arena, _ := mem.NewArena(1 << 14)
	b, err := NewBackend(arena, Config{Backend: "bitmap", PageWords: 16})
	if err != nil {
		t.Fatal(err)
	}
	const n = 128 // 8 pages of 16 words
	for i := 0; i < n; i++ {
		if st := b.Store(mem.Addr(8*(1+i)), 8, uint64(i)+1); st != OK {
			t.Fatalf("store %d: %v", i, st)
		}
	}
	if b.WriteSetSize() != n {
		t.Fatalf("WriteSetSize = %d, want %d", b.WriteSetSize(), n)
	}
	if b.MustStop() {
		t.Fatal("bitmap backend set MustStop")
	}
	b.Commit(nil)
	for i := 0; i < n; i++ {
		if got := arena.ReadWord(mem.Addr(8 * (1 + i))); got != uint64(i)+1 {
			t.Fatalf("commit word %d = %d", i, got)
		}
	}
	if c := b.Counters(); c.WordsCommitted != n || c.BytesCommitted != 0 {
		t.Fatalf("counters %+v, want %d whole words", c, n)
	}
}

// TestBitmapSubWordMerge: sub-word stores seed from the arena and commit
// only the marked bytes.
func TestBitmapSubWordMerge(t *testing.T) {
	arena, _ := mem.NewArena(1 << 12)
	b, _ := NewBackend(arena, Config{Backend: "bitmap", PageWords: 8})
	arena.WriteWord(64, 0x8877665544332211)
	if st := b.Store(66, 2, 0xBEEF); st != OK {
		t.Fatal(st)
	}
	v, st := b.Load(64, 8)
	if st != OK || v != 0x88776655BEEF2211 {
		t.Fatalf("merged word = %#x, %v", v, st)
	}
	// The arena word changes underneath; unmarked bytes keep the latest
	// arena values after commit.
	arena.WriteWord(64, 0x1111111111111111)
	b.Commit(nil)
	if got := arena.ReadWord(64); got != 0x11111111BEEF1111 {
		t.Fatalf("commit result %#x, want 0x11111111BEEF1111", got)
	}
}

// TestBitmapPageRecycling: pages freed by Finalize are reused, and recycled
// pages carry no stale data.
func TestBitmapPageRecycling(t *testing.T) {
	arena, _ := mem.NewArena(1 << 13)
	b, _ := NewBackend(arena, Config{Backend: "bitmap", PageWords: 8})
	for round := 0; round < 4; round++ {
		base := mem.Addr(8 + round*256)
		arena.WriteWord(base, uint64(round)+7)
		if v, st := b.Load(base, 8); st != OK || v != uint64(round)+7 {
			t.Fatalf("round %d: load = %d, %v", round, v, st)
		}
		b.Store(base+8, 1, 0xAB) // sub-word: marks must be clean each round
		if !b.Validate() {
			t.Fatalf("round %d: validation failed", round)
		}
		b.Finalize()
		if b.ReadSetSize() != 0 || b.WriteSetSize() != 0 {
			t.Fatalf("round %d: finalize left words", round)
		}
	}
}
